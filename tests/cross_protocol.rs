//! Cross-crate integration tests: all three protocols driven through the
//! harness on the topology-aware fabric.

use canopus::CanopusNode;
use canopus_epaxos::{EpaxosConfig, EpaxosNode};
use canopus_harness::*;
use canopus_sim::Dur;
use canopus_zab::{ZabConfig, ZabNode};

fn small_load(rate: f64) -> LoadSpec {
    let mut load = LoadSpec::new(rate);
    load.warmup = Dur::millis(100);
    load.duration = Dur::millis(300);
    load
}

#[test]
fn canopus_single_dc_serves_load_with_agreement() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let load = small_load(30_000.0);
    let cfg = canopus_config_for(&spec);
    let mut cluster = build_canopus(&spec, &load, cfg, 7);
    cluster.sim.run_for(load.warmup + load.duration);
    // Everyone committed and digests agree.
    let d0 = cluster.sim.node::<CanopusNode>(cluster.nodes[0]).stats();
    assert!(d0.committed_cycles > 10);
    for &n in &cluster.nodes {
        let s = cluster.sim.node::<CanopusNode>(n).stats();
        assert!(s.committed_cycles > 0, "{n} made no progress");
    }
    // Nodes at the same commit point have the same digest: compare the two
    // with equal committed_cycles.
    let mut by_cycles: std::collections::BTreeMap<u64, u64> = Default::default();
    for &n in &cluster.nodes {
        let s = cluster.sim.node::<CanopusNode>(n).stats();
        if let Some(&d) = by_cycles.get(&s.committed_cycles) {
            assert_eq!(d, s.commit_digest, "digest mismatch at equal commit point");
        } else {
            by_cycles.insert(s.committed_cycles, s.commit_digest);
        }
    }
}

#[test]
fn canopus_multi_dc_latency_tracks_wan_rtt() {
    let spec = DeploymentSpec::paper_multi_dc(3);
    let mut load = small_load(50_000.0);
    load.warmup = Dur::millis(500);
    load.duration = Dur::millis(700);
    let cfg = canopus_config_for(&spec);
    let result = run_canopus(&spec, &load, cfg, 11);
    assert!(result.healthy);
    let median = result.median.expect("measured");
    // Completion is bounded below by ~half the max RTT (the nearest DC's
    // cycle) and above by ~1.5 cycles of the farthest pair.
    let max_rtt = spec.max_rtt();
    assert!(
        median.as_nanos() > max_rtt.as_nanos() / 4,
        "median {median} implausibly fast vs RTT {max_rtt}"
    );
    assert!(
        median.as_nanos() < max_rtt.as_nanos() * 2,
        "median {median} implausibly slow vs RTT {max_rtt}"
    );
}

#[test]
fn epaxos_cluster_converges_under_load() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let load = small_load(30_000.0);
    let cfg = EpaxosConfig {
        batch_duration: Dur::millis(2),
        ..EpaxosConfig::default()
    };
    let mut cluster = build_epaxos(&spec, &load, cfg, 9);
    cluster
        .sim
        .run_for(load.warmup + load.duration + Dur::millis(100));
    let w0 = cluster.sim.node::<EpaxosNode>(cluster.nodes[0]).stats();
    assert!(w0.executed_weight > 0);
    assert!(w0.fast_path > 0, "synthetic load takes the fast path");
    assert_eq!(w0.slow_path, 0, "0% interference: no slow path");
}

#[test]
fn zab_observers_scale_reads_leader_caps_writes() {
    let spec = DeploymentSpec::paper_single_dc(9); // 27 nodes
    let load = small_load(60_000.0);
    let cfg = ZabConfig {
        participants: 6,
        ..ZabConfig::default()
    };
    let mut cluster = build_zab(&spec, &load, cfg, 13);
    cluster
        .sim
        .run_for(load.warmup + load.duration + Dur::millis(200));
    // All writes flow through node 0 (the leader); reads are served all over.
    let mut reads_served_away_from_leader = 0;
    for &n in &cluster.nodes[1..] {
        reads_served_away_from_leader += cluster.sim.node::<ZabNode>(n).stats().reads_served;
    }
    assert!(reads_served_away_from_leader > 0);
    let leader = cluster.sim.node::<ZabNode>(cluster.nodes[0]).stats();
    assert!(leader.applied_weight > 0, "leader applied transactions");
}

#[test]
fn whole_stack_is_deterministic() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let load = small_load(20_000.0);
    let cfg = canopus_config_for(&spec);
    assert!(deterministic_check(&spec, &load, cfg, 31337));
}

#[test]
fn throughput_search_finds_a_knee() {
    let spec = DeploymentSpec::paper_single_dc(3);
    let cfg = canopus_config_for(&spec);
    let search = SearchSpec {
        start_rate: 50_000.0,
        growth: 4.0,
        latency_limit: Dur::millis(10),
        max_steps: 6,
    };
    let result = find_max_throughput(
        |rate| run_canopus(&spec, &small_load(rate), cfg.clone(), 3),
        &search,
    );
    let best = result.best.expect("at least the first point sustains");
    assert!(best.achieved > 40_000.0);
    assert!(!result.ladder.is_empty());
    // The ladder is monotone in offered load.
    for pair in result.ladder.windows(2) {
        assert!(pair[1].offered > pair[0].offered);
    }
}
