//! Chaos suite for the shard-parallel engine: every node hosts four
//! independent LOT pipelines behind a `ShardEngine`, and the sharded
//! verdict adds per-shard agreement, key→shard routing stability, and
//! cross-shard transaction atomicity on top of the base §6 checks.
//!
//! The suite also carries the single-shard anchor tests: a 1-shard
//! engine must reproduce a pinned trace hash (catalog v2) so future
//! refactors of the multiplexing layer cannot silently change the
//! execution, and plain-vs-sharded runs are compared semantically.

use std::collections::BTreeSet;

use canopus::{ShardEngine, ShardMsg};
use canopus_harness::{
    chaos_canopus, chaos_sharded_canopus, chaos_verdict, chaos_verdict_sharded,
    cross_shard_atomicity_partition as cross_shard_atomicity_partition_in,
    hot_shard_skew as hot_shard_skew_in, ChaosReport, ChaosScenario, ChaosTimeline, ChaosTopology,
    Cluster, DeploymentSpec, HistoryConfig,
};
use canopus_sim::NodeId;

const SHARDS: u16 = 4;

fn spec() -> DeploymentSpec {
    DeploymentSpec::paper_single_dc(3)
}

fn topo() -> ChaosTopology {
    ChaosTopology::sim_default()
}

fn timeline() -> ChaosTimeline {
    ChaosTimeline::sim_default()
}

fn history_config() -> HistoryConfig {
    HistoryConfig {
        probe_at: timeline().converge_after(),
        ..HistoryConfig::default()
    }
}

/// Every third write becomes a cross-shard `MultiPut` spanning the
/// client's whole key set — the anchor-protocol workload.
fn multi_put_config() -> HistoryConfig {
    HistoryConfig {
        multi_put_every: 3,
        ..history_config()
    }
}

/// All keys pinned to shard 0 of a 4-shard engine: one pipeline carries
/// the entire keyed workload while the other three idle.
fn hot_shard_config() -> HistoryConfig {
    HistoryConfig {
        hot_shard: Some((0, SHARDS)),
        ..history_config()
    }
}

fn seeds() -> Vec<u64> {
    let n = match std::env::var("CHAOS_SEEDS").as_deref() {
        Ok("ci") => 4,
        Ok("extended") => 60,
        Ok(other) => other.parse().unwrap_or(20),
        _ if cfg!(debug_assertions) => 2,
        _ => 20,
    };
    (1..=n).map(|i| 0x5A4D + i).collect()
}

fn run_one(
    hcfg: &HistoryConfig,
    scenario: &ChaosScenario,
    seed: u64,
    shards: u16,
) -> (ChaosReport, Cluster<ShardMsg>) {
    let mut cluster = chaos_sharded_canopus(&spec(), hcfg, seed, shards);
    cluster.apply_plan(&scenario.plan, timeline().run_for);
    let report = chaos_verdict_sharded(
        &cluster,
        timeline().converge_after(),
        &(scenario.exempt)("canopus"),
    );
    (report, cluster)
}

const DUMP_EVENTS: usize = 40;

fn sweep(hcfg: HistoryConfig, scenario: ChaosScenario) {
    for seed in seeds() {
        let (report, cluster) = run_one(&hcfg, &scenario, seed, SHARDS);
        assert!(
            report.ok(),
            "canopus_sharded / {} / seed {:#x}: {} ok, {} timed out, violations: {:#?}
{}",
            scenario.name,
            seed,
            report.ops_ok,
            report.ops_timed_out,
            report.violations,
            cluster.flight_dump(DUMP_EVENTS)
        );
        assert!(
            report.ops_ok > 50,
            "canopus_sharded / {} / seed {:#x}: suspiciously little progress ({} ops)
{}",
            scenario.name,
            seed,
            report.ops_ok,
            cluster.flight_dump(DUMP_EVENTS)
        );
    }
}

// ---------------------------------------------------------------------
// Sharded sweeps
// ---------------------------------------------------------------------

#[test]
fn sharded_superleaf_partition() {
    sweep(
        history_config(),
        canopus_harness::scenarios::superleaf_partition(&topo(), &timeline()),
    );
}

#[test]
fn sharded_crash_restart_churn() {
    sweep(
        history_config(),
        canopus_harness::scenarios::crash_restart_churn(&topo(), &timeline()),
    );
}

#[test]
fn sharded_hot_shard_skew() {
    sweep(hot_shard_config(), hot_shard_skew_in(&topo(), &timeline()));
}

#[test]
fn sharded_cross_shard_atomicity_partition() {
    sweep(
        multi_put_config(),
        cross_shard_atomicity_partition_in(&topo(), &timeline()),
    );
}

/// Multi-key transactions under the stacked partition: the sweep above
/// proves atomicity; this asserts the anchor protocol actually engaged
/// (cross-shard transactions were split and fully committed, not just
/// absent).
#[test]
fn cross_shard_txns_flow_under_partition() {
    let scenario = cross_shard_atomicity_partition_in(&topo(), &timeline());
    let (report, cluster) = run_one(&multi_put_config(), &scenario, 0x5A4D + 1, SHARDS);
    assert!(report.ok(), "violations: {:#?}", report.violations);
    let trusted = cluster.trusted_nodes();
    let node = trusted.first().copied().expect("some trusted node");
    let engine = cluster
        .sim
        .node_any(node)
        .downcast_ref::<ShardEngine>()
        .expect("shard engine");
    let stats = engine.stats();
    assert!(
        stats.txns_started > 10,
        "expected cross-shard transactions, got {stats:?}"
    );
    assert_eq!(
        stats.txns_started, stats.txns_committed,
        "every started txn must release its reply: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// Key→shard stability across restarts
// ---------------------------------------------------------------------

/// After a crash-restart churn, EVERY node — including the restarted one,
/// which rebuilt its engine from the restart factory — must file each
/// committed key under the shard the router maps it to. A router that
/// drifted across restart would split a key's history between pipelines.
#[test]
fn key_to_shard_stable_across_restart() {
    let scenario = canopus_harness::scenarios::crash_restart_churn(&topo(), &timeline());
    let (report, cluster) = run_one(&history_config(), &scenario, 0x5A4D + 2, SHARDS);
    assert!(report.ok(), "violations: {:#?}", report.violations);
    for i in 0..spec().node_count() {
        let node = NodeId(i as u32);
        if !cluster.sim.is_alive(node) {
            continue;
        }
        let engine = cluster
            .sim
            .node_any(node)
            .downcast_ref::<ShardEngine>()
            .expect("shard engine");
        let router = engine.router();
        for s in 0..engine.shard_count() {
            for cc in engine.shard(s).committed_log() {
                for set in &cc.sets {
                    for op in &set.ops {
                        let keys: Vec<u64> = match op {
                            canopus::CommittedOp::Put { key, .. } => vec![*key],
                            canopus::CommittedOp::MultiPut { keys, .. } => keys.clone(),
                            canopus::CommittedOp::Synthetic { .. } => vec![],
                        };
                        for key in keys {
                            assert_eq!(
                                router.shard_of_key(key),
                                s,
                                "node {node}: key {key} committed on shard {s} but routes \
                                 elsewhere"
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Determinism and the single-shard anchor
// ---------------------------------------------------------------------

fn traced_run(hcfg: &HistoryConfig, seed: u64, shards: u16) -> (u64, u64) {
    let scenario = canopus_harness::scenarios::superleaf_partition(&topo(), &timeline());
    let mut cluster = chaos_sharded_canopus(&spec(), hcfg, seed, shards);
    cluster.sim.enable_trace_hash();
    cluster.apply_plan(&scenario.plan, timeline().run_for);
    let report = chaos_verdict_sharded(
        &cluster,
        timeline().converge_after(),
        &(scenario.exempt)("canopus"),
    );
    assert!(report.ok(), "violations: {:#?}", report.violations);
    (
        cluster.sim.trace_hash().expect("enabled"),
        cluster.sim.events_processed(),
    )
}

/// Two sharded runs of the same plan + seed are byte-identical, and a
/// different seed explores a different schedule.
#[test]
fn sharded_determinism_same_seed_identical() {
    let a = traced_run(&history_config(), 7, SHARDS);
    let b = traced_run(&history_config(), 7, SHARDS);
    assert_eq!(a, b, "sharded runs diverged");
    let c = traced_run(&history_config(), 8, SHARDS);
    assert_ne!(a.0, c.0, "different seeds should differ");
}

/// The single-shard engine's execution is pinned (catalog v2): a refactor
/// of the shard multiplexing layer that changes even one event of the
/// degenerate 1-shard case must be an explicit, versioned decision.
#[test]
fn single_shard_trace_hash_is_pinned() {
    let (hash, events) = traced_run(&history_config(), 7, 1);
    let again = traced_run(&history_config(), 7, 1);
    assert_eq!((hash, events), again, "single-shard run not reproducible");
    assert_eq!(
        hash, 0xe82e_4821_6bcd_6f2b,
        "single-shard trace drifted: if intentional, bump CATALOG_VERSION and re-pin"
    );
}

/// Semantic equivalence of plain vs sharded(1): same clients, same seed,
/// same scenario — both verdicts must be clean and both must commit a
/// healthy volume of operations. (Bit-identical traces are impossible:
/// the sharded wire frames carry a shard id and the engine derives
/// per-shard RNG streams, so the pinned hash above anchors the sharded
/// execution instead.)
#[test]
fn single_shard_matches_plain_semantics() {
    let seed = 0x5A4D + 3;
    let scenario = canopus_harness::scenarios::superleaf_partition(&topo(), &timeline());

    let mut plain = chaos_canopus(&spec(), &history_config(), seed);
    plain.apply_plan(&scenario.plan, timeline().run_for);
    let plain_report = chaos_verdict(
        &plain,
        timeline().converge_after(),
        &(scenario.exempt)("canopus"),
    );

    let (sharded_report, _) = run_one(&history_config(), &scenario, seed, 1);

    assert!(plain_report.ok(), "plain: {:#?}", plain_report.violations);
    assert!(
        sharded_report.ok(),
        "sharded(1): {:#?}",
        sharded_report.violations
    );
    assert!(plain_report.ops_ok > 50 && sharded_report.ops_ok > 50);
    // The engines saw equivalent traffic: within 25% op volume of each
    // other (timing differs; the workload and its completion must not).
    let (a, b) = (plain_report.ops_ok as f64, sharded_report.ops_ok as f64);
    assert!(
        (a - b).abs() / a.max(b) < 0.25,
        "plain committed {a} ops but sharded(1) committed {b}"
    );
}

/// The convergence-exemption plumbing reaches the sharded verdict: an
/// empty trusted set (every node exempted) still yields a well-formed
/// report.
#[test]
fn sharded_verdict_handles_exemptions() {
    let scenario = canopus_harness::scenarios::superleaf_partition(&topo(), &timeline());
    let (_, cluster) = run_one(&history_config(), &scenario, 0x5A4D + 4, SHARDS);
    let all: BTreeSet<NodeId> = (0..spec().node_count() as u32).map(NodeId).collect();
    let report = chaos_verdict_sharded(&cluster, timeline().converge_after(), &all);
    assert!(report.ok(), "violations: {:#?}", report.violations);
}
