//! Live chaos suite: the same fault scenarios the simulator sweep runs,
//! executed over **real loopback TCP sockets**.
//!
//! Each run spawns a 2-super-leaf × 3-node deployment plus one
//! closed-loop [`canopus_harness::HistoryClient`] per node on the
//! thread-based TCP transport, replays a `FaultPlan` on the wall clock
//! through the shared `FaultRules` table (crashes stop and respawn real
//! node loops), and then runs the shared chaos verdict over the recovered
//! states: agreement (global + per-key), client FIFO, read validity, and
//! post-heal convergence. Linearizability timing is not checked live —
//! nodes have no common clock base (see `chaos_verdict_parts`).
//!
//! The verdict is deterministic (it must pass for every seed), the
//! byte-level trace is not — this is a real scheduler and a real network
//! stack.
//!
//! Seed count: 3 in release (the acceptance sweep, ~1 min wall clock for
//! the whole suite), 1 in debug spot checks, `LIVE_CHAOS_SEEDS=ci` for
//! the fixed CI set, `LIVE_CHAOS_SEEDS=N` for deeper local sweeps.
//!
//! Canopus crash/restart scenarios are exercised by the simulator suite
//! only: live restarts would race the deliberately slow live failure
//! detector (see `canopus_harness::live`), so here Canopus runs the
//! partition and loss scenarios while ZAB and Raft KV cover
//! crash/restart.

use canopus::CanopusMsg;
use canopus_harness::scenarios::{
    asymmetric_loss, leader_crash_mid_round, superleaf_partition, ChaosScenario,
};
use canopus_harness::{
    live_chaos_canopus, live_chaos_canopus_batched, live_chaos_raftkv, live_chaos_zab,
    live_history_config, live_timeline, live_topology, ChaosProtocol, ChaosTimeline, ChaosTopology,
    HistoryConfig, LiveCluster, RaftKvMsg,
};
use canopus_net::Wire;
use canopus_zab::ZabMsg;

fn seeds() -> Vec<u64> {
    let n = match std::env::var("LIVE_CHAOS_SEEDS").as_deref() {
        Ok("ci") => 3,
        Ok(other) => other.parse().unwrap_or(3),
        // Debug builds (plain `cargo test --workspace`) spot-check one
        // seed; the acceptance sweep is `cargo test --release --test
        // live_chaos`.
        _ if cfg!(debug_assertions) => 1,
        _ => 3,
    };
    (1..=n).map(|i| 0x11FE + i).collect()
}

fn sweep<M: ChaosProtocol + Wire + Send>(
    build: fn(&ChaosTopology, &HistoryConfig, u64) -> LiveCluster<M>,
    scenario_fn: fn(&ChaosTopology, &ChaosTimeline) -> ChaosScenario,
) {
    let topo = live_topology();
    let t = live_timeline();
    for seed in seeds() {
        let scenario = scenario_fn(&topo, &t);
        let mut cluster = build(&topo, &live_history_config(), seed);
        let applied = cluster.run_plan(&scenario.plan, t.run_for);
        assert!(
            !applied.is_empty(),
            "{} / {}: no fault was applied",
            M::NAME,
            scenario.name
        );
        let outcome = cluster.shutdown();
        let report = outcome.verdict(t.converge_after(), &(scenario.exempt)(M::NAME));
        assert!(
            report.ok(),
            "{} / {} / seed {:#x}: {} ok, {} timed out, violations: {:#?}
{}",
            M::NAME,
            scenario.name,
            seed,
            report.ops_ok,
            report.ops_timed_out,
            report.violations,
            outcome.flight_dump(40)
        );
        assert!(
            report.ops_ok > 20,
            "{} / {} / seed {:#x}: suspiciously little progress ({} ops)
{}",
            M::NAME,
            scenario.name,
            seed,
            report.ops_ok,
            outcome.flight_dump(40)
        );
    }
}

#[test]
fn live_canopus_superleaf_partition() {
    sweep::<CanopusMsg>(live_chaos_canopus, superleaf_partition);
}

#[test]
fn live_canopus_asymmetric_loss() {
    sweep::<CanopusMsg>(live_chaos_canopus, asymmetric_loss);
}

/// The throughput knobs (batching window + 4-deep pipelining) over real
/// sockets, with the same partition scenario and the same verdict bar as
/// the default configuration above.
#[test]
fn live_canopus_batched_superleaf_partition() {
    fn build(topo: &ChaosTopology, hcfg: &HistoryConfig, seed: u64) -> LiveCluster<CanopusMsg> {
        live_chaos_canopus_batched(topo, hcfg, seed, 4)
    }
    sweep::<CanopusMsg>(build, superleaf_partition);
}

#[test]
fn live_zab_superleaf_partition() {
    sweep::<ZabMsg>(live_chaos_zab, superleaf_partition);
}

#[test]
fn live_zab_leader_crash_restart() {
    sweep::<ZabMsg>(live_chaos_zab, leader_crash_mid_round);
}

#[test]
fn live_zab_asymmetric_loss() {
    sweep::<ZabMsg>(live_chaos_zab, asymmetric_loss);
}

#[test]
fn live_raftkv_leader_crash_restart() {
    sweep::<RaftKvMsg>(live_chaos_raftkv, leader_crash_mid_round);
}
