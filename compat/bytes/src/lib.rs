//! Vendored, zero-dependency subset of the `bytes` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `bytes` it actually uses: cheaply cloneable
//! immutable [`Bytes`] views (reference-counted slices), an append-only
//! [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] read/write traits in
//! their little-endian forms. The API is call-compatible with `bytes` 1.x
//! for everything the Canopus crates touch, so swapping the real crate
//! back in is a one-line `Cargo.toml` change.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into reference-counted bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static slice. (The shim copies it once; the view is still
    /// zero-copy to clone and slice afterwards.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a fresh `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    fn from_vec(vec: Vec<u8>) -> Bytes {
        let end = vec.len();
        Bytes {
            data: Arc::from(vec),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A zero-copy sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them. Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        Bytes::from_vec(vec)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.vec).fmt(f)
    }
}

/// Checked-free sequential reads from a byte source (panics on underrun,
/// like the real crate; callers guard with [`Buf::remaining`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_split() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(b.slice(..2), Bytes::from(vec![1, 2]));
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(u64::MAX);
        buf.put_slice(b"xy");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEADBEEF);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
