//! Vendored minimal `epoll` + `eventfd` wrapper (offline build shim).
//!
//! The reactor in `canopus-net` needs exactly four kernel facilities that
//! std does not expose: an epoll instance, an eventfd waker, a nonblocking
//! `connect(2)`, and level-triggered readiness notification. This crate
//! wraps those via direct FFI to the C library symbols that are always
//! linked on Linux — no external crates, mirroring the other `compat/`
//! shims. Like them it lives outside the workspace, which is also what
//! permits the `unsafe` FFI here while the workspace denies `unsafe_code`.
//!
//! The API is deliberately tiny and level-triggered only: [`Poller`]
//! (add/modify/delete/wait), [`Interest`], [`Events`]/[`Event`], [`Waker`],
//! and [`connect_nonblocking`]. Linux-only by design (the repo's target
//! platform); other platforms fail to compile with a clear message.

#![cfg_attr(not(target_os = "linux"), allow(dead_code))]

#[cfg(not(target_os = "linux"))]
compile_error!("epoll-shim is Linux-only; gate the `tcp` feature off on other platforms");

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

// Constant values for Linux x86_64 / aarch64 (identical on both).
const EPOLL_CLOEXEC: c_int = 0x80000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0x800;
const SOCK_CLOEXEC: c_int = 0x80000;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const EINPROGRESS: i32 = 115;

/// Kernel ABI for `struct epoll_event`: packed on x86_64, naturally
/// aligned everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Readiness interest for one registered fd. Level-triggered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed/errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    flags: u32,
}

impl Event {
    /// Readable — including hangup/error, which a read will surface as
    /// EOF or an io error.
    pub fn readable(&self) -> bool {
        self.flags & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }

    /// Writable — including error, which the next write (or
    /// `take_error`) will surface.
    pub fn writable(&self) -> bool {
        self.flags & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }

    /// The peer closed or the fd errored.
    pub fn closed(&self) -> bool {
        self.flags & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }
}

/// Reusable output buffer for [`Poller::wait`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per wait call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) ABI struct.
            let flags = e.events;
            let token = e.data;
            Event { token, flags }
        })
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A level-triggered epoll instance.
pub struct Poller {
    fd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the call.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest (and token) of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Deregistering an fd that was already closed (and
    /// therefore auto-removed by the kernel) reports the OS error.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: event pointer must be non-null on kernels < 2.6.9; ours
        // is valid either way.
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Waits for readiness, filling `events`. `None` blocks indefinitely.
    /// Returns the number of events (0 on timeout or `EINTR`).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let millis: c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a nonzero timeout never spins as zero.
                let ms = d.as_millis();
                if ms == 0 && d.as_nanos() > 0 {
                    1
                } else {
                    ms.min(c_int::MAX as u128) as c_int
                }
            }
        };
        // SAFETY: buffer pointer/length describe `events.buf`, valid for
        // the duration of the call.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.buf.as_mut_ptr(),
                events.buf.len() as c_int,
                millis,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this Poller and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

impl AsRawFd for Poller {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

/// An eventfd-backed waker: `wake()` from any thread makes the poller's
/// next (or current) `wait` return with the waker's token readable.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (nonblocking, cloexec) and registers it with
    /// `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let waker = Waker { fd };
        poller.add(fd, token, Interest::READ)?;
        Ok(waker)
    }

    /// Signals the poller. Cheap and safe to call from any thread.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a valid local. An EAGAIN (counter
        // saturated) still leaves the fd readable, which is all we need.
        let n = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EAGAIN) {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Drains the eventfd counter so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads 8 bytes into a valid local; nonblocking fd.
        unsafe {
            read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this Waker and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

/// Starts a nonblocking TCP connect. Returns the stream plus whether the
/// connect already completed (loopback often does). When it returns
/// `false`, register for writability and check `stream.take_error()` once
/// writable to learn the outcome.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<(TcpStream, bool)> {
    // SAFETY: plain syscall, no pointers.
    let fd = cvt(unsafe {
        socket(
            match addr {
                SocketAddr::V4(_) => AF_INET as c_int,
                SocketAddr::V6(_) => AF_INET6 as c_int,
            },
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
        )
    })?;
    // SAFETY: fd is a fresh socket owned from here on by the TcpStream,
    // which closes it on drop (including on the error paths below).
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let ret = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                sin_family: AF_INET,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: pointer/length describe `sa` for the call's duration.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                sin6_family: AF_INET6,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: pointer/length describe `sa` for the call's duration.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if ret == 0 {
        return Ok((stream, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok((stream, false));
    }
    Err(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;

    #[test]
    fn wait_times_out_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable());
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 1).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, 1);
        waker.drain();
        // Drained: the next wait times out instead of spinning.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
        t.join().unwrap();
    }

    #[test]
    fn nonblocking_connect_completes_writable_without_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, done) = connect_nonblocking(addr).unwrap();
        if !done {
            let poller = Poller::new().unwrap();
            poller.add(stream.as_raw_fd(), 9, Interest::WRITE).unwrap();
            let mut events = Events::with_capacity(8);
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(n, 1);
            assert!(events.iter().next().unwrap().writable());
        }
        assert!(stream.take_error().unwrap().is_none());
        // Prove the socket works as a std TcpStream end to end.
        let mut s = stream;
        s.set_nonblocking(false).unwrap();
        s.write_all(b"ping").unwrap();
        let (mut peer, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        std::io::Read::read_exact(&mut peer, &mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn connect_to_dead_port_reports_error_on_writable() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let Ok((stream, done)) = connect_nonblocking(addr) else {
            return; // immediate ECONNREFUSED is also a pass
        };
        if done {
            return;
        }
        let poller = Poller::new().unwrap();
        poller.add(stream.as_raw_fd(), 3, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(stream.take_error().unwrap().is_some());
    }

    #[test]
    fn modify_toggles_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        // Read-only interest first: an idle connected socket is writable
        // but not readable, so the wait must time out.
        poller.add(stream.as_raw_fd(), 4, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        poller
            .modify(stream.as_raw_fd(), 4, Interest::BOTH)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable());
        poller.delete(stream.as_raw_fd()).unwrap();
    }
}
