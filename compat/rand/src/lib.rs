//! Vendored, zero-dependency subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: a deterministic
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng`] constructor, and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. The statistical quality matches
//! what the simulator and workloads need (xoshiro256++ passes BigCrush);
//! only the API surface is reduced. Swapping the real crate back in is a
//! one-line `Cargo.toml` change.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the shim's stand-in for
/// `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((start as $wide as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
