//! Vendored, zero-dependency subset of the `criterion` bench API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal wall-clock harness that is call-compatible with the
//! `criterion` 0.5 surface the benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurements are a
//! simple warm-up plus a timed batch with median-of-runs reporting — good
//! enough for relative regressions, without criterion's statistics. When
//! the binary is run with `--test` (as `cargo test` does for
//! `harness = false` bench targets) every benchmark body executes exactly
//! once, keeping the test suite fast.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup re-runs for every single iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.result = Some(Sample {
                total: Duration::ZERO,
                iters: 1,
            });
            return;
        }
        // Warm-up and iteration-count calibration.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.measurement / 4 {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().checked_div(calib_iters as u32);
        let iters = match per_iter {
            Some(d) if !d.is_zero() => {
                (self.measurement.as_nanos() / d.as_nanos().max(1)).clamp(1, 1 << 24) as u64
            }
            _ => 1 << 16,
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.result = Some(Sample {
            total: start.elapsed(),
            iters,
        });
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.result = Some(Sample {
                total: Duration::ZERO,
                iters: 1,
            });
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let wall = Instant::now();
        while wall.elapsed() < self.measurement {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some(Sample { total, iters });
    }
}

/// The benchmark registry / runner.
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Criterion {
        self.measurement = dur;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) if !self.test_mode && s.iters > 0 => {
                let per_iter = s.total.as_nanos() as f64 / s.iters as f64;
                println!(
                    "{name:<40} {:>12} iters  {:>14}/iter",
                    s.iters,
                    fmt_ns(per_iter)
                );
            }
            _ => println!("{name:<40} ok (test mode)"),
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            test_mode: true,
            measurement: Duration::from_millis(1),
        };
        let mut hits = 0u32;
        c.bench_function("t", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
        let mut batched = 0u32;
        c.bench_function("t2", |b| {
            b.iter_batched(|| 2u32, |v| batched += v, BatchSize::SmallInput)
        });
        assert_eq!(batched, 2);
    }
}
