//! A geo-replicated append-only ledger — the paper's motivating
//! application class (§1: "geo-replicated database systems ... and private
//! blockchains that continuously add records to a distributed ledger").
//!
//! Three datacenters from the paper's Table 1 (Ireland, California,
//! Virginia) each host a three-node super-leaf. Every datacenter appends
//! ledger records concurrently; pipelined Canopus cycles (§7.1) keep
//! throughput high despite the 133 ms worst-case RTT, and every node ends
//! with the identical ledger.
//!
//! Run with: `cargo run --release --example geo_ledger -p canopus-harness`

use bytes::Bytes;
use canopus::{CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape};
use canopus_kv::{ClientRequest, Op};
use canopus_net::{ClosFabric, LinkParams, Topology, WanMatrix};
use canopus_sim::{impl_process_any, Context, Dur, NodeId, Process, Simulation, Timer};

/// A client that appends ledger records at a steady rate. Each record is a
/// `Put` to a fresh key derived from (site, sequence) — an append-only
/// log embedded in the kv API.
struct LedgerWriter {
    target: NodeId,
    site: u64,
    appended: u64,
    confirmed: u64,
    max_records: u64,
    interval: Dur,
}

impl Process<CanopusMsg> for LedgerWriter {
    fn on_start(&mut self, ctx: &mut Context<'_, CanopusMsg>) {
        ctx.set_timer(self.interval, 0);
    }
    fn on_timer(&mut self, _t: Timer, ctx: &mut Context<'_, CanopusMsg>) {
        if self.appended < self.max_records {
            let record = format!("site{}-block{}", self.site, self.appended);
            ctx.send(
                self.target,
                CanopusMsg::Request(ClientRequest {
                    client: ctx.id(),
                    op_id: self.appended,
                    op: Op::Put {
                        key: self.site << 32 | self.appended,
                        value: Bytes::from(record.into_bytes()),
                    },
                }),
            );
            self.appended += 1;
            ctx.set_timer(self.interval, 0);
        }
    }
    fn on_message(&mut self, _f: NodeId, msg: CanopusMsg, _ctx: &mut Context<'_, CanopusMsg>) {
        if matches!(msg, CanopusMsg::Reply(_)) {
            self.confirmed += 1;
        }
    }
    impl_process_any!();
}

fn main() {
    const PER_DC: usize = 3;
    const SITES: usize = 3;
    const RECORDS_PER_SITE: u64 = 200;

    let wan = WanMatrix::paper_sites(SITES);
    println!("== deploying over {} datacenters ==", SITES);
    for a in wan.sites() {
        for b in wan.sites() {
            if a < b {
                println!(
                    "  {} <-> {}: {} RTT",
                    wan.name(a),
                    wan.name(b),
                    wan.rtt(a, b)
                );
            }
        }
    }

    let mut topo = Topology::multi_dc(wan, PER_DC, LinkParams::default());
    let shape = LotShape::flat(SITES as u16);
    let membership: Vec<Vec<NodeId>> = (0..SITES)
        .map(|s| {
            (0..PER_DC)
                .map(|i| NodeId((s * PER_DC + i) as u32))
                .collect()
        })
        .collect();
    let table = EmulationTable::new(shape, membership);

    // One ledger writer per datacenter, colocated with its super-leaf.
    let mut writer_slots = Vec::new();
    for s in 0..SITES {
        let anchor = NodeId((s * PER_DC) as u32);
        writer_slots.push(topo.add_node(topo.rack_of(anchor)));
    }

    let mut sim = Simulation::new(ClosFabric::new(topo), 7);
    let cfg = CanopusConfig::wide_area(); // pipelining on, 5 ms cycles
    for i in 0..(SITES * PER_DC) as u32 {
        sim.add_node(Box::new(CanopusNode::new(
            NodeId(i),
            table.clone(),
            cfg.clone(),
            7,
        )));
    }
    let mut writers = Vec::new();
    for (s, &slot) in writer_slots.iter().enumerate() {
        let id = sim.add_node(Box::new(LedgerWriter {
            target: NodeId((s * PER_DC) as u32),
            site: s as u64,
            appended: 0,
            confirmed: 0,
            max_records: RECORDS_PER_SITE,
            interval: Dur::millis(10),
        }));
        assert_eq!(id, slot);
        writers.push(id);
    }

    println!(
        "\nappending {} records per site at 100 records/s/site ...",
        RECORDS_PER_SITE
    );
    sim.run_for(Dur::secs(4));

    println!("\n== results ==");
    // Datacenters legitimately sit at slightly different commit points at
    // any instant (a DC whose farthest peer is closer completes cycles
    // sooner), so agreement is checked on the ledger *content*.
    let mut reference_digest = None;
    for i in 0..(SITES * PER_DC) as u32 {
        let node = sim.node::<CanopusNode>(NodeId(i));
        let s = node.stats();
        let digest = node.store().digest();
        println!(
            "  node {i} ({}): ledger_len={} cycles={} ledger_digest={digest:016x}",
            ["IR", "CA", "VA"][i as usize / PER_DC],
            node.store().len(),
            s.committed_cycles,
        );
        match reference_digest {
            None => reference_digest = Some(digest),
            Some(d) => assert_eq!(d, digest, "ledger diverged at node {i}"),
        }
    }
    for (s, &w) in writers.iter().enumerate() {
        let writer = sim.node::<LedgerWriter>(w);
        println!(
            "  site {s}: appended={} confirmed={}",
            writer.appended, writer.confirmed
        );
        assert_eq!(writer.confirmed, RECORDS_PER_SITE);
    }
    println!(
        "\nAll {} nodes hold the identical {}-record ledger. ✓",
        SITES * PER_DC,
        SITES as u64 * RECORDS_PER_SITE
    );
}
