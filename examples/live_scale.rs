//! A 100+ node live Canopus cluster sustaining 100 000+ client sessions.
//!
//! The reactor transport multiplexes every connection of every node onto a
//! fixed pool of event loops (one per core), which is what makes this
//! shape fit on a single machine: 108 Canopus nodes (36 super-leaves of
//! three in a 6×6 LOT tree) listen on loopback TCP, and a handful of [`SessionMux`]
//! processes host one hundred thousand concurrent closed-loop client
//! sessions between them — each session ~32 bytes of state, replies routed
//! back by op id alone, issues deferred tick-by-tick whenever the
//! transport's [`SendGate`] reports saturation.
//!
//! Run with: `cargo run --release --example live_scale [-- --record]`
//!
//! With `--record` (or `LIVE_SCALE_RECORD=1`) the measured figures are
//! merged into `BENCH_canopus.json` under a `live_scale` section.
//!
//! Knobs (environment):
//!
//! | variable                   | default | meaning                         |
//! |----------------------------|---------|---------------------------------|
//! | `LIVE_SCALE_SHAPE`         | 6x6     | LOT fanouts; super-leaves are   |
//! |                            |         | the product (3 nodes each)      |
//! | `LIVE_SCALE_SESSIONS`      | 100000  | concurrent client sessions      |
//! | `LIVE_SCALE_MUXES`         | 4       | session-mux processes           |
//! | `LIVE_SCALE_RUN_SECS`      | 60      | measured window after the ramp  |
//! | `LIVE_SCALE_THINK_MS`      | 150000  | per-session think time          |
//! | `LIVE_SCALE_OP_TIMEOUT_MS` | 30000   | per-op client timeout           |
//! | `LIVE_SCALE_RAMP_MS`       | 150000  | first-issue spread window       |
//! | `LIVE_SCALE_SEED`          | 42      | base seed for nodes and muxes   |
//!
//! `LIVE_TIME_UNIT_MS` defaults to 100 here (not the chaos suite's 50):
//! with a hundred node threads sharing a few cores, scheduling hiccups are
//! long enough to trip the tighter failure timeouts.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use canopus::{CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape};
use canopus_bench::json::JsonObject;
use canopus_harness::{live_canopus_config, live_time_unit};
use canopus_net::tcp::{spawn_node_obs, NetObs, PeerMap};
use canopus_net::{FaultRules, SendGate};
use canopus_sim::{Dur, NodeId, Time};
use canopus_workload::{LatencyRecorder, SessionMux, SessionMuxConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Soft `RLIMIT_NOFILE`, if the platform exposes `/proc/self/limits`.
fn fd_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Peak resident set in MiB, if the platform exposes `/proc/self/status`.
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024)
}

/// Replaces (or appends) the top-level `"live_scale"` object in the
/// recorded bench document. `section` is a rendered JSON object.
fn splice_live_scale(doc: &str, section: &str) -> String {
    let mut doc = doc.trim_end().to_string();
    if let Some(start) = doc.find("\"live_scale\"") {
        // The block is always written by this function, so it is a plain
        // object of numeric fields: brace matching needs no string care.
        let cut_start = doc[..start].rfind(',').unwrap_or(start);
        let open = start + doc[start..].find('{').expect("live_scale object");
        let mut depth = 0usize;
        let mut end = open;
        for (i, c) in doc[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        doc.replace_range(cut_start..end, "");
    }
    let close = doc.rfind('}').expect("bench file is a JSON object");
    let head = doc[..close].trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    let indented = section.replace('\n', "\n  ");
    format!("{head}{sep}\n  \"live_scale\": {indented}\n}}\n")
}

fn main() {
    let record = std::env::args().any(|a| a == "--record")
        || std::env::var("LIVE_SCALE_RECORD").is_ok_and(|v| v == "1");
    if std::env::var("LIVE_TIME_UNIT_MS").is_err() {
        std::env::set_var("LIVE_TIME_UNIT_MS", "100");
    }
    let unit = live_time_unit();

    // A deep LOT tree is what makes 100+ nodes tractable: a flat shape
    // exchanges every super-leaf's state all-to-all each cycle (O(leaves²)
    // transfers), while the paper's hierarchy aggregates per subtree.
    let shape_spec = std::env::var("LIVE_SCALE_SHAPE").unwrap_or_else(|_| "6x6".into());
    let fanouts: Vec<u16> = shape_spec
        .split('x')
        .map(|f| {
            f.trim()
                .parse()
                .expect("LIVE_SCALE_SHAPE: fanouts like 6x6")
        })
        .collect();
    let shape = LotShape::new(fanouts);
    let groups = shape.num_superleaves();
    assert!(groups >= 2, "need at least two super-leaves");
    let nodes = groups * 3;
    let sessions = env_u64("LIVE_SCALE_SESSIONS", 100_000) as usize;
    let muxes = env_u64("LIVE_SCALE_MUXES", 4).max(1) as usize;
    let run = Duration::from_secs(env_u64("LIVE_SCALE_RUN_SECS", 60));
    // 100k closed-loop sessions at 150 s think time offer ~670 ops/s —
    // the "many mostly-idle sessions" regime the multiplexer exists for,
    // and comfortably inside what a 108-node consensus core commits on a
    // small shared machine. The protocol has no admission control, so
    // offered load beyond the commit rate piles up in node request
    // buffers, inflates every cycle's merged state, and collapses cycle
    // rate; provision think/ramp so arrival rate stays under capacity.
    let think_ms = env_u64("LIVE_SCALE_THINK_MS", 150_000);
    let op_timeout_ms = env_u64("LIVE_SCALE_OP_TIMEOUT_MS", 30_000);
    let ramp_ms = env_u64("LIVE_SCALE_RAMP_MS", 150_000);
    let seed = env_u64("LIVE_SCALE_SEED", 42);

    // Sessions are virtual — only nodes and muxes own sockets. Budget:
    // listeners, the intra-super-leaf mesh, one representative fetch
    // channel per (node, sibling leaf), both request and reply directions
    // between every node and every mux, and reactor plumbing. Both ends of
    // every loopback connection live in this process, hence the ×2s.
    let fd_estimate =
        (nodes + muxes) + groups * 12 + nodes * (groups - 1) * 2 + nodes * muxes * 4 + 64;
    if let Some(limit) = fd_soft_limit() {
        assert!(
            (fd_estimate as u64) <= limit,
            "estimated {fd_estimate} fds but soft limit is {limit}; raise it with `ulimit -n`"
        );
        println!("fd budget: ~{fd_estimate} of {limit} (soft limit) ✓");
    }
    println!(
        "cluster: {nodes} nodes ({groups} super-leaves, LOT {shape_spec}), {sessions} sessions \
         over {muxes} muxes, reactor loops: {}, time unit: {unit}",
        canopus_net::reactor::loop_count()
    );

    let membership: Vec<Vec<NodeId>> = (0..groups)
        .map(|g| (0..3).map(|i| NodeId((g * 3 + i) as u32)).collect())
        .collect();
    let table = EmulationTable::new(shape, membership);
    let cfg = CanopusConfig {
        max_linger: unit / 8,
        max_pipeline_depth: 4,
        ..live_canopus_config()
    };

    let mut peers = PeerMap::new();
    let mut node_listeners = Vec::new();
    for i in 0..nodes + muxes {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        peers.insert(NodeId(i as u32), l.local_addr().expect("addr"));
        node_listeners.push(l);
    }
    let mux_listeners = node_listeners.split_off(nodes);

    println!("spawning {nodes} Canopus nodes ...");
    let rules = Arc::new(FaultRules::new(seed));
    let mut node_handles = Vec::new();
    for (i, listener) in node_listeners.into_iter().enumerate() {
        let id = NodeId(i as u32);
        let node = CanopusNode::new(id, table.clone(), cfg.clone(), seed);
        node_handles.push(spawn_node_obs::<CanopusMsg>(
            id,
            Box::new(node),
            listener,
            peers.clone(),
            seed.wrapping_add(i as u64),
            Arc::clone(&rules),
            NetObs::disabled(),
        ));
    }

    println!("spawning {muxes} session muxes hosting {sessions} sessions ...");
    let per = sessions / muxes;
    let extra = sessions % muxes;
    let stop_at = Time::ZERO + Dur::millis(ramp_ms) + Dur::nanos(run.as_nanos() as u64);
    let t0 = Instant::now();
    let mut gates = Vec::new();
    let mut mux_handles = Vec::new();
    for (k, listener) in mux_listeners.into_iter().enumerate() {
        let id = NodeId((nodes + k) as u32);
        let count = per + usize::from(k < extra);
        // Rotate the target list per mux so the muxes' low-numbered
        // sessions land on different super-leaves.
        let targets: Vec<NodeId> = (0..nodes)
            .map(|i| NodeId(((i + k * nodes / muxes) % nodes) as u32))
            .collect();
        let scfg = SessionMuxConfig {
            sessions: count,
            targets,
            think_time: Dur::millis(think_ms),
            op_timeout: Dur::millis(op_timeout_ms),
            tick: Dur::millis(25),
            ramp: Dur::millis(ramp_ms),
            stop_at,
            warmup: Dur::millis(ramp_ms),
            key_base: 1 + (k * per + k.min(extra)) as u64,
            ..SessionMuxConfig::default()
        };
        let gate = SendGate::new();
        let probe = gate.clone();
        let mux = SessionMux::<CanopusMsg>::new(scfg, seed ^ (0x9e3779b9 + k as u64))
            .with_pressure(Arc::new(move || probe.is_saturated()));
        mux_handles.push(spawn_node_obs::<CanopusMsg>(
            id,
            Box::new(mux),
            listener,
            peers.clone(),
            seed.wrapping_add((nodes + k) as u64),
            Arc::clone(&rules),
            NetObs::disabled().with_gate(gate.clone()),
        ));
        gates.push(gate);
    }

    // Ramp + measured window + a bounded drain for in-flight ops.
    let drain = Duration::from_millis(op_timeout_ms.min(10_000)) + Duration::from_secs(2);
    let total = Duration::from_millis(ramp_ms) + run + drain;
    println!(
        "running: {}s ramp + {}s measured + {}s drain ...",
        ramp_ms / 1000,
        run.as_secs(),
        drain.as_secs()
    );
    let mut slept = Duration::ZERO;
    while slept < total {
        let step = Duration::from_secs(10).min(total - slept);
        std::thread::sleep(step);
        slept += step;
        let incidents: u64 = gates.iter().map(|g| g.incidents()).sum();
        println!(
            "  t+{:>4}s  backpressure incidents: {incidents}",
            slept.as_secs()
        );
    }

    println!("stopping muxes and collecting session stats ...");
    let elapsed = t0.elapsed();
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut timeouts = 0u64;
    let mut late = 0u64;
    let mut deferred = 0u64;
    let mut outstanding = 0u64;
    let mut served = 0u64;
    let mut peak = 0u64;
    let mut hosted = 0usize;
    let mut latency = LatencyRecorder::default();
    let mut merge_rng = SmallRng::seed_from_u64(seed);
    for handle in mux_handles {
        let mux = handle
            .stop()
            .into_any()
            .downcast::<SessionMux<CanopusMsg>>()
            .expect("session mux");
        issued += mux.issued;
        completed += mux.completed;
        timeouts += mux.timeouts;
        late += mux.late;
        deferred += mux.deferred;
        outstanding += mux.outstanding();
        served += mux.sessions_served();
        peak += mux.peak_outstanding();
        hosted += mux.sessions();
        latency.merge(&mux.latency, &mut merge_rng);
    }

    // Let the final cycle close on every super-leaf before comparing
    // committed prefixes.
    std::thread::sleep(Duration::from_millis(unit.as_millis() * 20));
    println!("stopping {nodes} nodes and comparing commit digests ...");
    let mut digests = Vec::new();
    let mut committed_cycles = 0u64;
    let mut committed_weight = 0u64;
    for handle in node_handles {
        let process = handle.stop();
        let node = process
            .as_any()
            .downcast_ref::<CanopusNode>()
            .expect("canopus node");
        let s = node.stats();
        digests.push(s.commit_digest);
        committed_cycles = committed_cycles.max(s.committed_cycles);
        committed_weight = committed_weight.max(s.committed_weight);
    }

    let incidents: u64 = gates.iter().map(|g| g.incidents()).sum();
    let throughput = completed as f64 / elapsed.as_secs_f64();
    let p50 = latency.median().map_or(f64::NAN, |d| d.as_millis_f64());
    let p99 = latency
        .percentile(99.0)
        .map_or(f64::NAN, |d| d.as_millis_f64());
    println!("\n=== live_scale ===");
    println!("  nodes: {nodes} ({groups} super-leaves)   sessions: {hosted} over {muxes} muxes");
    println!("  issued: {issued}  completed: {completed}  timeouts: {timeouts}  late: {late}");
    println!("  deferred issues: {deferred}  backpressure incidents: {incidents}");
    println!("  sessions served: {served}/{hosted}  peak outstanding: {peak}");
    println!(
        "  committed throughput: {throughput:.0} ops/s over {:.0}s",
        elapsed.as_secs_f64()
    );
    println!("  latency p50: {p50:.0} ms  p99: {p99:.0} ms");
    println!("  node-side: {committed_cycles} cycles, {committed_weight} committed writes");
    if let Some(rss) = peak_rss_mib() {
        println!("  peak RSS: {rss} MiB");
    }

    assert_eq!(hosted, sessions, "every configured session was hosted");
    assert_eq!(
        issued,
        completed + timeouts + outstanding,
        "op accounting balances"
    );
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "commit digests diverged across the live cluster!"
    );
    assert!(
        served * 100 >= (hosted as u64) * 95,
        "at least 95% of sessions must complete an op (served {served} of {hosted})"
    );

    if record {
        let path = "BENCH_canopus.json";
        let doc = std::fs::read_to_string(path).expect("read BENCH_canopus.json");
        let mut section = JsonObject::new();
        section
            .field_int("nodes", nodes as u64)
            .field_str("shape", &shape_spec)
            .field_int("groups", groups as u64)
            .field_int("sessions", hosted as u64)
            .field_int("muxes", muxes as u64)
            .field_int("run_secs", run.as_secs())
            .field_int("think_ms", think_ms)
            .field_int("time_unit_ms", unit.as_millis())
            .field_int("reactor_loops", canopus_net::reactor::loop_count() as u64)
            .field_int("issued", issued)
            .field_int("completed", completed)
            .field_int("timeouts", timeouts)
            .field_int("deferred", deferred)
            .field_int("sessions_served", served)
            .field_int("peak_outstanding", peak)
            .field_num("committed_ops_per_sec", throughput)
            .field_num("latency_p50_ms", p50)
            .field_num("latency_p99_ms", p99)
            .field_int("node_committed_cycles", committed_cycles)
            .field_int("node_committed_writes", committed_weight)
            .field_int("gate_incidents", incidents)
            .field_int("fd_estimate", fd_estimate as u64);
        if let Some(rss) = peak_rss_mib() {
            section.field_int("peak_rss_mib", rss);
        }
        std::fs::write(path, splice_live_scale(&doc, &section.render())).expect("write bench file");
        println!("\nrecorded `live_scale` section in {path}");
    }
    println!("\nLive {nodes}-node cluster sustained {served} sessions. ✓");
}
