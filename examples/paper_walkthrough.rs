//! Reproduces the paper's §4.7 illustrative example (Figure 2): six nodes
//! A..F in two super-leaves Sx = {A, B, C} and Sy = {D, E, F} running one
//! consensus cycle, with the simulator's tracer printing the protocol
//! events — round-1 proposal broadcasts, the representatives' cross-leaf
//! proposal-requests (the figure's Qx/Qy), buffered replies, and the final
//! identical commit at every node.
//!
//! Run with: `cargo run --example paper_walkthrough -p canopus-harness`

use bytes::Bytes;
use canopus::{CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape};
use canopus_kv::{ClientRequest, Op};
use canopus_sim::{Dur, NodeId, Simulation, TraceEvent, UniformFabric};
use std::cell::RefCell;
use std::rc::Rc;

fn name(n: NodeId) -> String {
    match n.0 {
        0..=5 => char::from(b'A' + n.0 as u8).to_string(),
        u32::MAX => "client".into(),
        other => format!("n{other}"),
    }
}

fn main() {
    let table = EmulationTable::new(
        LotShape::flat(2),
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)], // Sx = {A, B, C}
            vec![NodeId(3), NodeId(4), NodeId(5)], // Sy = {D, E, F}
        ],
    );
    let mut sim = Simulation::new(UniformFabric::new(Dur::micros(50)), 2017);

    // Trace interesting protocol messages, paper-style.
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let log = log.clone();
        sim.set_tracer(Box::new(move |event| {
            if let TraceEvent::Send {
                from, to, at, msg, ..
            } = event
            {
                let line = match msg {
                    CanopusMsg::ProposalRequest { cycle, vnode } => Some(format!(
                        "{at}  {} -> {}  proposal-request Q{vnode:?} ({cycle})",
                        name(*from),
                        name(*to),
                    )),
                    CanopusMsg::ProposalResponse { state } => Some(format!(
                        "{at}  {} -> {}  proposal-response P{:?} ({}, {} request sets)",
                        name(*from),
                        name(*to),
                        state.vnode,
                        state.cycle,
                        state.sets.len(),
                    )),
                    CanopusMsg::Request(_) => {
                        Some(format!("{at}  client -> {}  write request", name(*to),))
                    }
                    CanopusMsg::Reply(_) => {
                        Some(format!("{at}  {} -> client  committed reply", name(*from),))
                    }
                    _ => None,
                };
                if let Some(line) = line {
                    log.borrow_mut().push(line);
                }
            }
        }));
    }

    for i in 0..6u32 {
        sim.add_node(Box::new(CanopusNode::new(
            NodeId(i),
            table.clone(),
            CanopusConfig::default(),
            2017,
        )));
    }

    // The paper's scenario: A and B hold pending requests RA and RB when
    // the cycle starts; C's proposal is empty; Sy contributes RD-ish work.
    println!("== injecting requests: RA at A, RB at B, RD at D ==\n");
    for (node, key) in [(0u32, 100u64), (1, 200), (3, 300)] {
        sim.inject(
            NodeId(node),
            CanopusMsg::Request(ClientRequest {
                client: canopus_sim::EXTERNAL,
                op_id: key,
                op: Op::Put {
                    key,
                    value: Bytes::from_static(b"88888888"),
                },
            }),
            Dur::micros(10),
        );
    }

    sim.run_for(Dur::millis(20));

    println!("== protocol event trace (cross-super-leaf plane) ==");
    for line in log.borrow().iter() {
        println!("  {line}");
    }

    println!("\n== the agreed total order (identical at all six nodes) ==");
    let reference: Vec<String> = sim
        .node::<CanopusNode>(NodeId(0))
        .committed_log()
        .iter()
        .flat_map(|cc| {
            cc.sets.iter().map(|s| {
                let keys: Vec<String> = s
                    .ops
                    .iter()
                    .map(|op| match op {
                        canopus::CommittedOp::Put { key, .. } => format!("R{key}"),
                        canopus::CommittedOp::Synthetic { .. } => "R?".into(),
                        canopus::CommittedOp::MultiPut { keys, .. } => {
                            format!("T{}", keys.len())
                        }
                    })
                    .collect();
                format!(
                    "{}:{}",
                    name(s.origin),
                    if keys.is_empty() {
                        "∅".to_string()
                    } else {
                        keys.join("+")
                    }
                )
            })
        })
        .collect();
    println!("  [{}]", reference.join(", "));

    for i in 1..6u32 {
        let other: Vec<String> = sim
            .node::<CanopusNode>(NodeId(i))
            .committed_log()
            .iter()
            .flat_map(|cc| {
                cc.sets.iter().map(|s| {
                    let keys: Vec<String> = s
                        .ops
                        .iter()
                        .map(|op| match op {
                            canopus::CommittedOp::Put { key, .. } => format!("R{key}"),
                            canopus::CommittedOp::Synthetic { .. } => "R?".into(),
                            canopus::CommittedOp::MultiPut { keys, .. } => {
                                format!("T{}", keys.len())
                            }
                        })
                        .collect();
                    format!(
                        "{}:{}",
                        name(s.origin),
                        if keys.is_empty() {
                            "∅".to_string()
                        } else {
                            keys.join("+")
                        }
                    )
                })
            })
            .collect();
        assert_eq!(other, reference, "node {} diverged!", name(NodeId(i)));
    }
    println!("\nConsensus: empty proposals occupy positions too (PC = {{∅ | NC | 1}}),");
    println!("request sets were never split, and all nodes agree. ✓");
}
