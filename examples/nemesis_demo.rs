//! Nemesis demo: partition a Canopus super-leaf mid-run, watch consensus
//! stall without diverging, heal, and watch it commit again — then run the
//! full chaos verdict (agreement + client FIFO + linearizability +
//! convergence) over the recorded histories.
//!
//! ```text
//! cargo run --release --example nemesis_demo
//! ```
//!
//! Exits non-zero if any safety or convergence check fails, so the smoke
//! verification path can run it directly.

use canopus::CanopusNode;
use canopus_harness::{chaos_canopus, chaos_verdict, DeploymentSpec, HistoryConfig};
use canopus_sim::fault::{FaultEvent, FaultPlan};
use canopus_sim::{Dur, NodeId, Time};

fn main() {
    // 3 racks × 3 nodes, one super-leaf per rack, one history client per
    // node issuing tagged writes and reads closed-loop.
    let spec = DeploymentSpec::paper_single_dc(3);
    let hcfg = HistoryConfig {
        probe_at: Time::ZERO + Dur::millis(1100),
        ..HistoryConfig::default()
    };
    let seed = 7;
    let mut cluster = chaos_canopus(&spec, &hcfg, seed);
    cluster.sim.enable_trace_hash();

    // Cut super-leaf 0 from super-leaves 1 and 2 at t=200 ms; heal at
    // t=900 ms; run to t=2100 ms.
    let leaf0: Vec<NodeId> = (0..3).map(NodeId).collect();
    let rest: Vec<NodeId> = (3..9).map(NodeId).collect();
    let plan = FaultPlan::new()
        .at(
            Dur::millis(200),
            FaultEvent::CutGroups { a: leaf0, b: rest },
        )
        .at(Dur::millis(900), FaultEvent::HealAll);

    let committed = |cluster: &canopus_harness::Cluster<_>| {
        cluster
            .sim
            .node::<CanopusNode>(NodeId(0))
            .stats()
            .committed_cycles
    };

    println!("phase 1: healthy cluster, faults scheduled");
    let applied = cluster.apply_plan(&plan, Dur::millis(2100));
    for (at, action) in &applied {
        println!("  t={:>5.1}ms  {:?}", at.as_nanos() as f64 / 1e6, action);
    }
    println!(
        "phase 2: run complete at t={} ms, node 0 committed {} cycles",
        cluster.sim.now().as_millis(),
        committed(&cluster)
    );

    let report = chaos_verdict(
        &cluster,
        Time::ZERO + Dur::millis(1100),
        &Default::default(),
    );
    println!(
        "verdict [{}]: {} ops ok, {} timed out, {} reads linearizability-checked",
        report.protocol, report.ops_ok, report.ops_timed_out, report.reads_checked
    );
    println!(
        "trace hash: {:#018x} (rerun with the same seed to reproduce exactly)",
        cluster.sim.trace_hash().expect("enabled")
    );
    if report.ok() {
        println!("all checks passed: agreement, FIFO, linearizability, post-heal convergence");
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
