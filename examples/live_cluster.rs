//! A live Canopus cluster over real TCP sockets.
//!
//! The same `CanopusNode` state machines that drive every simulation in
//! this repository here run unmodified on the tokio transport
//! (`canopus_net::tcp`): six nodes in two super-leaves listen on loopback
//! TCP, a TCP client (registered in the peer map as node 6) submits writes
//! and a read through real sockets and receives real replies, and the
//! nodes' commit digests are compared at shutdown.
//!
//! Run with: `cargo run --example live_cluster -p canopus-harness`

use bytes::Bytes;
use canopus::{CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape};
use canopus_kv::{ClientRequest, Op, OpResult};
use canopus_net::tcp::{read_frame, run_node, write_frame, PeerMap};
use canopus_net::wire::Wire;
use canopus_sim::NodeId;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::oneshot;

const NODES: u32 = 6;
const CLIENT_ID: NodeId = NodeId(6);

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let table = EmulationTable::new(
        LotShape::flat(2),
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(3), NodeId(4), NodeId(5)],
        ],
    );
    let mut cfg = CanopusConfig::default();
    cfg.record_log = false;

    // Bind every listener up front so the peer map is complete, including
    // the client's own inbound socket (node 6 in the message namespace).
    let mut listeners = Vec::new();
    let mut peers = PeerMap::new();
    for i in 0..NODES {
        let l = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        peers.insert(NodeId(i), l.local_addr().expect("addr"));
        listeners.push(l);
    }
    let client_listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
    peers.insert(CLIENT_ID, client_listener.local_addr().expect("addr"));

    println!("spawning {NODES} Canopus nodes on loopback TCP ...");
    let mut handles = Vec::new();
    let mut shutdowns = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let id = NodeId(i as u32);
        println!("  node {id} on {}", peers.get(id).unwrap());
        let node = CanopusNode::new(id, table.clone(), cfg.clone(), 42);
        let (tx, rx) = oneshot::channel();
        shutdowns.push(tx);
        handles.push(tokio::spawn(run_node::<CanopusMsg>(
            id,
            Box::new(node),
            listener,
            peers.clone(),
            rx,
            42 + i as u64,
        )));
    }

    // Reply sink: accept connections and collect replies addressed to us.
    let (reply_tx, mut reply_rx) = tokio::sync::mpsc::channel::<CanopusMsg>(64);
    tokio::spawn(async move {
        loop {
            let Ok((mut stream, _)) = client_listener.accept().await else {
                return;
            };
            let tx = reply_tx.clone();
            tokio::spawn(async move {
                // Handshake frame first (sender's node id), then messages.
                let _ = read_frame(&mut stream).await;
                while let Ok(Some(frame)) = read_frame(&mut stream).await {
                    if let Ok(msg) = CanopusMsg::from_bytes(frame) {
                        if tx.send(msg).await.is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });

    // Submit writes + one read to node 0 over a raw TCP connection.
    let mut stream = TcpStream::connect(peers.get(NodeId(0)).unwrap())
        .await
        .expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write_frame(&mut stream, &CLIENT_ID.to_bytes())
        .await
        .expect("handshake");

    const WRITES: u64 = 10;
    println!("\nsubmitting {WRITES} writes and one read via TCP ...");
    for k in 0..WRITES {
        let req = CanopusMsg::Request(ClientRequest {
            client: CLIENT_ID,
            op_id: k,
            op: Op::Put {
                key: k,
                value: Bytes::from(format!("value-{k}").into_bytes()),
            },
        });
        write_frame(&mut stream, &req.to_bytes()).await.expect("send");
    }
    let read = CanopusMsg::Request(ClientRequest {
        client: CLIENT_ID,
        op_id: WRITES,
        op: Op::Get { key: 3 },
    });
    write_frame(&mut stream, &read.to_bytes())
        .await
        .expect("send");

    // Await all replies (with a timeout guard).
    let mut write_acks = 0u64;
    let mut read_value: Option<Option<Bytes>> = None;
    let deadline = tokio::time::sleep(std::time::Duration::from_secs(15));
    tokio::pin!(deadline);
    while write_acks < WRITES || read_value.is_none() {
        tokio::select! {
            _ = &mut deadline => {
                eprintln!("timed out waiting for replies");
                break;
            }
            Some(msg) = reply_rx.recv() => {
                if let CanopusMsg::Reply(reply) = msg {
                    match reply.result {
                        OpResult::Written => write_acks += 1,
                        OpResult::Value(v) => read_value = Some(v),
                        OpResult::Batch => {}
                    }
                }
            }
        }
    }
    println!("  write acks: {write_acks}/{WRITES}");
    match &read_value {
        Some(Some(v)) => println!(
            "  read(key=3) -> {:?}",
            String::from_utf8_lossy(v)
        ),
        Some(None) => println!("  read(key=3) -> <absent>"),
        None => println!("  read(key=3) -> <no reply>"),
    }

    // Shut the cluster down and compare final states.
    println!("\nshutting down and comparing commit digests ...");
    for tx in shutdowns {
        let _ = tx.send(());
    }
    let mut digests = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let process = h.await.expect("join");
        let node = process
            .as_any()
            .downcast_ref::<CanopusNode>()
            .expect("canopus node");
        let s = node.stats();
        println!(
            "  node {i}: cycles={} writes={} digest={:016x}",
            s.committed_cycles, s.committed_weight, s.commit_digest
        );
        digests.push(s.commit_digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "commit digests diverged across the live cluster!"
    );
    assert_eq!(write_acks, WRITES, "all writes must be acknowledged");
    println!("\nLive TCP cluster reached agreement. ✓");
}
