//! A live Canopus cluster over real TCP sockets.
//!
//! The same `CanopusNode` state machines that drive every simulation in
//! this repository here run unmodified on the thread-based TCP transport
//! (`canopus_net::tcp`): six nodes in two super-leaves listen on loopback
//! TCP, a TCP client (registered in the peer map as node 6) submits writes
//! and a read through real sockets and receives real replies, and the
//! nodes' commit digests are compared at shutdown.
//!
//! Run with: `cargo run --example live_cluster [-- --metrics]`
//!
//! With `--metrics`, every node runs with an enabled observability hub
//! and the per-node registry (consensus counters plus per-peer wire
//! traffic) is printed as text exposition at exit.

use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use canopus::{CanopusMsg, CanopusNode, EmulationTable, LotShape};
use canopus_harness::live_canopus_config;
use canopus_kv::{ClientRequest, Op, OpResult};
use canopus_net::tcp::{read_frame, run_node_obs, write_frame, NetObs, PeerMap};
use canopus_net::wire::Wire;
use canopus_net::FaultRules;
use canopus_obs::NodeObs;
use canopus_sim::NodeId;

const NODES: u32 = 6;
const CLIENT_ID: NodeId = NodeId(6);

/// Flight-ring capacity per node under `--metrics`.
const FLIGHT_CAP: usize = 64;

fn main() {
    let show_metrics = std::env::args().any(|a| a == "--metrics");
    let table = EmulationTable::new(
        LotShape::flat(2),
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(3), NodeId(4), NodeId(5)],
        ],
    );
    // The simulator-tuned defaults (25 ms failure timeout, 10–20 ms Raft
    // elections) assume a deterministic scheduler; on a real OS a loaded
    // box can deschedule a node thread longer than that and trigger false
    // failovers. All real-time-sensitive timeouts derive from one place:
    // `canopus_harness::live::live_time_unit()` (`LIVE_TIME_UNIT_MS` to
    // override at run time).
    let cfg = live_canopus_config();

    // Bind every listener up front so the peer map is complete, including
    // the client's own inbound socket (node 6 in the message namespace).
    let mut listeners = Vec::new();
    let mut peers = PeerMap::new();
    for i in 0..NODES {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        peers.insert(NodeId(i), l.local_addr().expect("addr"));
        listeners.push(l);
    }
    let client_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    peers.insert(CLIENT_ID, client_listener.local_addr().expect("addr"));

    println!("spawning {NODES} Canopus nodes on loopback TCP ...");
    let mut handles = Vec::new();
    let mut shutdowns = Vec::new();
    let mut hubs = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let id = NodeId(i as u32);
        println!("  node {id} on {}", peers.get(id).unwrap());
        let hub = if show_metrics {
            NodeObs::enabled(id.0, FLIGHT_CAP)
        } else {
            NodeObs::disabled()
        };
        hubs.push(hub.clone());
        let node = CanopusNode::new(id, table.clone(), cfg.clone(), 42).with_obs(hub.clone());
        let (tx, rx) = mpsc::channel();
        shutdowns.push(tx);
        let peer_map = peers.clone();
        let seed = 42 + i as u64;
        handles.push(std::thread::spawn(move || {
            run_node_obs::<CanopusMsg>(
                id,
                Box::new(node),
                listener,
                peer_map,
                rx,
                seed,
                Arc::new(FaultRules::new(seed)),
                NetObs::new(hub),
            )
        }));
    }

    // Reply sink: accept connections and collect replies addressed to us.
    let (reply_tx, reply_rx) = mpsc::channel::<CanopusMsg>();
    std::thread::spawn(move || loop {
        let Ok((mut stream, _)) = client_listener.accept() else {
            return;
        };
        let tx = reply_tx.clone();
        std::thread::spawn(move || {
            // Handshake frame first (sender's node id), then messages.
            let _ = read_frame(&mut stream);
            while let Ok(Some(frame)) = read_frame(&mut stream) {
                if let Ok(msg) = CanopusMsg::from_bytes(frame) {
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
            }
        });
    });

    // Submit writes + one read to node 0 over a raw TCP connection.
    let mut stream = TcpStream::connect(peers.get(NodeId(0)).unwrap()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write_frame(&mut stream, &CLIENT_ID.to_bytes()).expect("handshake");

    const WRITES: u64 = 10;
    println!("\nsubmitting {WRITES} writes and one read via TCP ...");
    for k in 0..WRITES {
        let req = CanopusMsg::Request(ClientRequest {
            client: CLIENT_ID,
            op_id: k,
            op: Op::Put {
                key: k,
                value: Bytes::from(format!("value-{k}").into_bytes()),
            },
        });
        write_frame(&mut stream, &req.to_bytes()).expect("send");
    }
    let read = CanopusMsg::Request(ClientRequest {
        client: CLIENT_ID,
        op_id: WRITES,
        op: Op::Get { key: 3 },
    });
    write_frame(&mut stream, &read.to_bytes()).expect("send");

    // Await all replies (with a timeout guard).
    let mut write_acks = 0u64;
    let mut read_value: Option<Option<Bytes>> = None;
    let deadline = Instant::now() + Duration::from_secs(15);
    while write_acks < WRITES || read_value.is_none() {
        let now = Instant::now();
        if now >= deadline {
            eprintln!("timed out waiting for replies");
            break;
        }
        match reply_rx.recv_timeout(deadline - now) {
            Ok(CanopusMsg::Reply(reply)) => match reply.result {
                OpResult::Written => write_acks += 1,
                OpResult::Value(v) => read_value = Some(v),
                OpResult::Batch => {}
            },
            Ok(_) => {}
            Err(_) => {
                eprintln!("timed out waiting for replies");
                break;
            }
        }
    }
    println!("  write acks: {write_acks}/{WRITES}");
    match &read_value {
        Some(Some(v)) => println!("  read(key=3) -> {:?}", String::from_utf8_lossy(v)),
        Some(None) => println!("  read(key=3) -> <absent>"),
        None => println!("  read(key=3) -> <no reply>"),
    }

    // Replies arrive as soon as the client's own super-leaf commits; the
    // remote super-leaf finishes the cycle one exchange later. Give the
    // final cycle time to close everywhere before pulling the plug, or the
    // strict digest comparison below races against that last hop.
    std::thread::sleep(Duration::from_millis(500));

    // Shut the cluster down and compare final states.
    println!("\nshutting down and comparing commit digests ...");
    for tx in shutdowns {
        let _ = tx.send(());
    }
    let mut digests = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let process = h.join().expect("join");
        let node = process
            .as_any()
            .downcast_ref::<CanopusNode>()
            .expect("canopus node");
        let s = node.stats();
        println!(
            "  node {i}: cycles={} writes={} digest={:016x}",
            s.committed_cycles, s.committed_weight, s.commit_digest
        );
        digests.push(s.commit_digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "commit digests diverged across the live cluster!"
    );
    assert_eq!(write_acks, WRITES, "all writes must be acknowledged");
    if show_metrics {
        for (i, hub) in hubs.iter().enumerate() {
            println!("\n--- metrics: node {i} ---");
            print!("{}", hub.metrics.snapshot().to_text());
        }
    }
    println!("\nLive TCP cluster reached agreement. ✓");
}
