//! Nemesis over real sockets: partition a live Canopus cluster
//! mid-run, watch consensus stall without diverging, heal, and watch it
//! commit again — then run the chaos verdict over the recorded histories.
//!
//! This is `examples/nemesis_demo.rs`'s scenario executed on the TCP
//! transport instead of the simulator: six `CanopusNode`s in two
//! super-leaves plus six closed-loop history clients on loopback TCP, a
//! wall-clock nemesis driving the same `FaultPlan` through the
//! transport's shared `FaultRules` table.
//!
//! ```text
//! cargo run --release --example live_nemesis [-- --metrics]
//! ```
//!
//! With `--metrics`, prints the text exposition of every node's metrics
//! registry (consensus counters, per-peer wire traffic, fault drops) at
//! exit. Exits non-zero if any safety or convergence check fails.

use canopus_harness::scenarios::superleaf_partition;
use canopus_harness::{live_chaos_canopus, live_history_config, live_timeline, live_topology};

fn main() {
    let show_metrics = std::env::args().any(|a| a == "--metrics");
    let topo = live_topology();
    let t = live_timeline();
    let scenario = superleaf_partition(&topo, &t);
    let seed = 7;

    println!(
        "spawning {} Canopus nodes + {} history clients on loopback TCP ...",
        topo.node_count(),
        topo.node_count()
    );
    let mut cluster = live_chaos_canopus(&topo, &live_history_config(), seed);

    println!(
        "running scenario `{}` on the wall clock ({} ms horizon):",
        scenario.name,
        t.run_for.as_millis()
    );
    let applied = cluster.run_plan(&scenario.plan, t.run_for);
    for (at, action) in &applied {
        println!("  t={:>7.1}ms  {:?}", at.as_nanos() as f64 / 1e6, action);
    }

    println!("shutting down and running the chaos verdict ...");
    let outcome = cluster.shutdown();
    if show_metrics {
        for (id, snap) in outcome.metrics_snapshots() {
            println!("--- metrics: node {id} ---");
            print!("{}", snap.to_text());
        }
    }
    let report = outcome.verdict(t.converge_after(), &(scenario.exempt)("canopus"));
    println!(
        "verdict [{}]: {} ops ok, {} timed out, {} reads validity-checked",
        report.protocol, report.ops_ok, report.ops_timed_out, report.reads_checked
    );
    if report.ok() {
        println!(
            "all checks passed over real sockets: agreement, FIFO, read validity, \
             post-heal convergence"
        );
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
