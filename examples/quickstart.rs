//! Quickstart: a six-node Canopus group on the deterministic simulator.
//!
//! Builds the paper's minimal interesting deployment — two super-leaves of
//! three nodes (Figure 2's topology) — submits interleaved writes and
//! reads from closed-loop clients, and shows that every node commits the
//! identical total order while reads observe linearizable values.
//!
//! Run with: `cargo run --example quickstart -p canopus-harness`

use canopus::{CanopusConfig, CanopusMsg, CanopusNode, EmulationTable, LotShape};
use canopus_net::{ClosFabric, LinkParams, Topology};
use canopus_sim::{Dur, NodeId, Simulation};
use canopus_workload::{ClosedLoopClient, ClosedLoopConfig, KeyDist};

fn main() {
    // ---------------------------------------------------------------
    // 1. Describe the deployment: one datacenter, two racks, three
    //    Canopus nodes per rack. Each rack is one super-leaf.
    // ---------------------------------------------------------------
    let mut topo = Topology::single_dc(2, 3, LinkParams::default());
    let shape = LotShape::flat(2);
    let membership = vec![
        vec![NodeId(0), NodeId(1), NodeId(2)], // super-leaf 0 = rack 0
        vec![NodeId(3), NodeId(4), NodeId(5)], // super-leaf 1 = rack 1
    ];
    let table = EmulationTable::new(shape, membership);

    // Clients live in the same racks as the nodes they talk to.
    let client_a = topo.add_node(topo.rack_of(NodeId(0)));
    let client_b = topo.add_node(topo.rack_of(NodeId(4)));

    // ---------------------------------------------------------------
    // 2. Build the simulation: topology-aware fabric + protocol nodes.
    // ---------------------------------------------------------------
    let mut sim = Simulation::new(ClosFabric::new(topo), 42);
    for i in 0..6u32 {
        sim.add_node(Box::new(CanopusNode::new(
            NodeId(i),
            table.clone(),
            CanopusConfig::default(),
            42,
        )));
    }

    // ---------------------------------------------------------------
    // 3. Attach two blocking clients issuing a 50/50 read-write mix.
    // ---------------------------------------------------------------
    let cfg = ClosedLoopConfig {
        write_ratio: 0.5,
        keys: KeyDist::uniform(16),
        warmup: Dur::ZERO,
        max_ops: 40,
        ..Default::default()
    };
    let a = sim.add_node(Box::new(ClosedLoopClient::<CanopusMsg>::new(
        NodeId(0),
        cfg.clone(),
        7,
    )));
    assert_eq!(a, client_a);
    let b = sim.add_node(Box::new(ClosedLoopClient::<CanopusMsg>::new(
        NodeId(4),
        cfg,
        8,
    )));
    assert_eq!(b, client_b);

    // ---------------------------------------------------------------
    // 4. Run one virtual second and inspect the outcome.
    // ---------------------------------------------------------------
    sim.run_for(Dur::secs(1));

    println!("== per-node state ==");
    let reference = sim.node::<CanopusNode>(NodeId(0)).stats().commit_digest;
    for i in 0..6u32 {
        let node = sim.node::<CanopusNode>(NodeId(i));
        let s = node.stats();
        println!(
            "node {i}: cycles={:<3} writes_committed={:<3} store_keys={:<2} digest={:016x}",
            s.committed_cycles,
            s.committed_weight,
            node.store().len(),
            s.commit_digest,
        );
        assert_eq!(s.commit_digest, reference, "agreement violated!");
    }

    println!("\n== first committed cycles at node 0 ==");
    for cc in sim
        .node::<CanopusNode>(NodeId(0))
        .committed_log()
        .iter()
        .take(4)
    {
        let ops: Vec<String> = cc
            .sets
            .iter()
            .flat_map(|set| {
                set.ops.iter().map(move |op| match op {
                    canopus::CommittedOp::Put { key, version, .. } => {
                        format!("{}:put(k{key})->v{version}", set.origin)
                    }
                    canopus::CommittedOp::Synthetic { count, .. } => {
                        format!("{}:batch({count})", set.origin)
                    }
                    canopus::CommittedOp::MultiPut { keys, .. } => {
                        format!("{}:txn({} keys)", set.origin, keys.len())
                    }
                })
            })
            .collect();
        println!("  {:?} @ {}: [{}]", cc.cycle, cc.at, ops.join(", "));
    }

    for (name, id) in [("A", client_a), ("B", client_b)] {
        let c = sim.node::<ClosedLoopClient<CanopusMsg>>(id);
        println!(
            "\nclient {name}: {} ops, write p50 = {}, read p50 = {}",
            c.completed(),
            c.writes
                .median()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            c.reads
                .median()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nAll six nodes committed the identical total order. ✓");
}
